package compare

import (
	"compsynth/internal/logic"
)

// Don't-care-aware identification — the paper's Section 6 extension (1):
// input combinations that can never occur at a subcircuit's inputs
// (satisfiability don't-cares) may be assigned freely, so more subcircuits
// become comparison functions and the resulting units are testable in
// context.
//
// IdentifyDC finds a permutation and bounds such that every REQUIRED
// minterm (on and care) lies inside [L, U] and no FORBIDDEN minterm
// (off and care) does. The recursion mirrors identify.go's exact search,
// relaxed cube-by-cube: "cofactor is constant" conditions weaken to
// "cofactor has no required / no forbidden care minterms". Because the
// relaxed search may accept borderline orders, the resulting spec is
// re-verified against the care set before being returned.

// IdentifyDC returns a Spec realizing some completion of the incompletely
// specified function (on, care): unit output matches `on` on every minterm
// where care is 1. Minterms outside care may take either value. The care
// set must not be empty of required minterms (use Simplify for constants).
func IdentifyDC(on, care logic.TT) (Spec, bool) {
	s, ok := identifyDC(on, care)
	return s, countIdentify(ok)
}

func identifyDC(on, care logic.TT) (Spec, bool) {
	if on.Vars() != care.Vars() {
		panic("compare: on/care variable mismatch")
	}
	req := on.And(care)
	forb := on.Not().And(care)
	if req.IsConst(false) || forb.IsConst(false) {
		// Completable as a constant; not a unit replacement.
		return Spec{}, false
	}
	n := on.Vars()
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	var found Spec
	ok := false
	budget := 200000 // caps pathological searches; plenty for n <= 7
	dcInterval(&budget, req, forb, vars, func(perm []int) bool {
		if s, valid := specFromPerm(req, forb, perm, false); valid {
			found, ok = s, true
			return false
		}
		return true
	})
	if ok {
		return found, true
	}
	// Complemented output: the offset interval.
	dcInterval(&budget, forb, req, vars, func(perm []int) bool {
		if s, valid := specFromPerm(forb, req, perm, true); valid {
			found, ok = s, true
			return false
		}
		return true
	})
	return found, ok
}

// specFromPerm derives the tightest bounds for a permutation and verifies
// them against the forbidden set (the safety net for the relaxed search).
func specFromPerm(req, forb logic.TT, perm []int, complement bool) (Spec, bool) {
	n := req.Vars()
	pr := req.Permute(perm)
	pf := forb.Permute(perm)
	lo, hi, ok := pr.OnsetBounds()
	if !ok {
		return Spec{}, false
	}
	// No forbidden minterm may fall inside [lo, hi].
	if !pf.And(logic.FromInterval(n, lo, hi)).IsConst(false) {
		return Spec{}, false
	}
	return Spec{N: n, Perm: append([]int(nil), perm...), L: lo, U: hi, Complement: complement}, true
}

// dcInterval enumerates variable orders under which the required set can be
// covered by an interval avoiding the forbidden set. emit returns false to
// stop. Returns false when aborted.
func dcInterval(budget *int, req, forb logic.TT, vars []int, emit func(perm []int) bool) bool {
	*budget--
	if *budget <= 0 {
		return false
	}
	k := req.Vars()
	if k == 0 {
		return emit(nil)
	}
	if req.IsConst(false) {
		// Any order works if some point avoids forb; leave the remaining
		// order as-is and let verification decide.
		return emit(append([]int(nil), vars...))
	}
	for p := 0; p < k; p++ {
		r0, r1 := req.Cofactor(p+1, false), req.Cofactor(p+1, true)
		f0, f1 := forb.Cofactor(p+1, false), forb.Cofactor(p+1, true)
		rest := restVars(vars, p)
		if r1.IsConst(false) {
			// Interval can live in the lower half.
			if !dcInterval(budget, r0, f0, rest, func(perm []int) bool {
				return emit(prepend(vars[p], perm))
			}) {
				return false
			}
		}
		if r0.IsConst(false) {
			if !dcInterval(budget, r1, f1, rest, func(perm []int) bool {
				return emit(prepend(vars[p], perm))
			}) {
				return false
			}
		}
		if !r0.IsConst(false) && !r1.IsConst(false) {
			// Spanning: lower half is a suffix, upper half a prefix, under
			// a common order.
			if !dcSplit(budget, r0, f0, r1, f1, rest, func(perm []int) bool {
				return emit(prepend(vars[p], perm))
			}) {
				return false
			}
		}
	}
	return true
}

// dcSplit finds common orders making (rs, fs) coverable by a suffix and
// (rp, fp) by a prefix.
func dcSplit(budget *int, rs, fs, rp, fp logic.TT, vars []int, emit func(perm []int) bool) bool {
	*budget--
	if *budget <= 0 {
		return false
	}
	k := rs.Vars()
	if k == 0 {
		// Single point each: suffix must include any required point and may
		// exclude a forbidden one only by being empty — defer to the
		// verifier.
		return emit(nil)
	}
	sFree := fs.IsConst(false) // suffix side unconstrained by forbidden
	pFree := fp.IsConst(false)
	if sFree && pFree {
		return emit(append([]int(nil), vars...))
	}
	for p := 0; p < k; p++ {
		rs0, rs1 := rs.Cofactor(p+1, false), rs.Cofactor(p+1, true)
		fs0, fs1 := fs.Cofactor(p+1, false), fs.Cofactor(p+1, true)
		rp0, rp1 := rp.Cofactor(p+1, false), rp.Cofactor(p+1, true)
		fp0, fp1 := fp.Cofactor(p+1, false), fp.Cofactor(p+1, true)
		rest := restVars(vars, p)

		// Suffix side, l-bit = 0: whole upper half inside the suffix, so
		// no forbidden minterms may live there; lower half recurses.
		// l-bit = 1: no required minterms in the lower half.
		// Prefix side mirrored.
		type sideChoice struct {
			ok   bool
			r, f logic.TT
		}
		sChoices := []sideChoice{
			{fs1.IsConst(false), rs0, fs0},
			{rs0.IsConst(false), rs1, fs1},
		}
		pChoices := []sideChoice{
			{fp0.IsConst(false), rp1, fp1},
			{rp1.IsConst(false), rp0, fp0},
		}
		for _, sc := range sChoices {
			if !sc.ok {
				continue
			}
			for _, pc := range pChoices {
				if !pc.ok {
					continue
				}
				if !dcSplit(budget, sc.r, sc.f, pc.r, pc.f, rest, func(perm []int) bool {
					return emit(prepend(vars[p], perm))
				}) {
					return false
				}
			}
		}
	}
	return true
}
