package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"compsynth/internal/gen"
	"compsynth/internal/obs"
	"compsynth/internal/resynth"
)

// TestStressEndpointsDuringRun hammers /metrics and /progress from several
// goroutines while a live parallel resynthesis run mutates the span tree,
// the progress gauges, and both metric registries underneath them. It proves
// (under -race, which CI runs for every test) that the live telemetry reads
// are properly synchronized against the pipeline's writes — the endpoints
// must never serve during a run what they could not serve safely.
func TestStressEndpointsDuringRun(t *testing.T) {
	run := (&obs.Flags{Trace: true}).Start("stresstest")
	defer run.Finish()
	srv := httptest.NewServer(Handler(run))
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/metrics", "/progress"}
			for n := 0; ; n++ {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(srv.URL + paths[n%len(paths)])
				if err != nil {
					t.Errorf("hammer: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	// Drive real work under the readers: parallel resynthesis with spans,
	// progress events, par queue telemetry and cache traffic all live.
	for _, b := range gen.SmallSuite() {
		opt := resynth.DefaultOptions()
		opt.Verify = false
		opt.MaxPasses = 2
		opt.Workers = 4
		opt.Tracer = run.Tracer
		if _, err := resynth.Optimize(b.Build(), opt); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}
