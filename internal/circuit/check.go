package circuit

import (
	"fmt"
	"regexp"
	"sort"
)

// Semantic static analysis of the circuit IR. Validate (circuit.go) is the
// cheap constructor-level sanity check; Check is the full invariant audit
// run behind the -check flag of the commands and after every resynthesis
// pass in tests. Beyond Validate it proves acyclicity with an explicit
// witness, verifies per-gate-type fanin arity, cross-checks the cached
// derived state (name index, fanout lists, topological order, levels)
// against a fresh recomputation, verifies level monotonicity along every
// edge, and rejects dangling or unreachable nodes. CheckComparisonUnits
// additionally audits the paper's headline structural guarantee on
// resynthesized circuits: every comparison unit has at most two paths from
// any of its inputs to its output (Section 2 of Pomeranz & Reddy, DAC 1995).

// CheckOptions adjusts Check's strictness.
type CheckOptions struct {
	// AllowUnreachable permits live gates from which no primary output is
	// reachable. Hand-written or freshly parsed netlists may carry unused
	// logic legitimately; optimizer outputs must not (SweepDead runs before
	// every pass boundary), so the strict default treats them as errors.
	AllowUnreachable bool
}

// Check audits every structural invariant of the circuit IR and returns the
// first violation found. It never mutates c, so it is safe to call between
// resynthesis passes without perturbing derived state or results.
func Check(c *Circuit) error { return CheckWith(c, CheckOptions{}) }

// CheckWith is Check with options.
func CheckWith(c *Circuit, opt CheckOptions) error {
	if c == nil {
		return fmt.Errorf("circuit: nil circuit")
	}
	// Node identity, names and the name index.
	seen := map[string]int{}
	for i, nd := range c.Nodes {
		if nd == nil {
			continue
		}
		if nd.ID != i {
			return fmt.Errorf("node at index %d has ID %d", i, nd.ID)
		}
		if nd.Type == dead {
			continue
		}
		if nd.Name == "" {
			return fmt.Errorf("node %d has an empty name", i)
		}
		if prev, dup := seen[nd.Name]; dup {
			return fmt.Errorf("duplicate name %q on nodes %d and %d", nd.Name, prev, i)
		}
		seen[nd.Name] = i
		if c.byName != nil {
			if got, ok := c.byName[nd.Name]; !ok || got != i {
				return fmt.Errorf("name index stale for %q: maps to %d, node is %d", nd.Name, got, i)
			}
		}
	}

	// Arity and dangling fanins.
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead {
			continue
		}
		switch nd.Type {
		case Input, Const0, Const1:
			if len(nd.Fanin) != 0 {
				return fmt.Errorf("node %s: %v must have no fanin, has %d", nd.Name, nd.Type, len(nd.Fanin))
			}
		case Buf, Not:
			if len(nd.Fanin) != 1 {
				return fmt.Errorf("node %s: %v must have exactly 1 fanin, has %d", nd.Name, nd.Type, len(nd.Fanin))
			}
		case And, Or, Nand, Nor, Xor, Xnor:
			if len(nd.Fanin) < 1 {
				return fmt.Errorf("node %s: %v must have fanin", nd.Name, nd.Type)
			}
		default:
			return fmt.Errorf("node %s: unknown gate type %v", nd.Name, nd.Type)
		}
		for pin, f := range nd.Fanin {
			if f < 0 || f >= len(c.Nodes) || c.Nodes[f] == nil {
				return fmt.Errorf("node %s: fanin pin %d dangles (node %d does not exist)", nd.Name, pin, f)
			}
			if c.Nodes[f].Type == dead {
				return fmt.Errorf("node %s: fanin pin %d dangles (node %d is dead)", nd.Name, pin, f)
			}
		}
	}

	// PI/PO designation lists.
	inputSeen := map[int]bool{}
	for _, in := range c.Inputs {
		if !c.Alive(in) || c.Nodes[in].Type != Input {
			return fmt.Errorf("input list entry %d is not a live primary input", in)
		}
		if inputSeen[in] {
			return fmt.Errorf("input %s listed twice", c.Nodes[in].Name)
		}
		inputSeen[in] = true
	}
	for _, nd := range c.Nodes {
		if nd != nil && nd.Type == Input && !inputSeen[nd.ID] {
			return fmt.Errorf("input node %s missing from the input list", nd.Name)
		}
	}
	for _, o := range c.Outputs {
		if !c.Alive(o) {
			return fmt.Errorf("output designation %d is not a live node", o)
		}
	}

	// Acyclicity, with a witness cycle on failure.
	if cyc := findCycle(c); cyc != nil {
		names := make([]string, len(cyc))
		for i, id := range cyc {
			names[i] = c.Nodes[id].Name
		}
		return fmt.Errorf("cycle: %v", names)
	}

	// Independent level computation; every edge must strictly increase the
	// level and every gate must sit exactly one above its deepest fanin.
	lv := freshLevels(c)
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead || len(nd.Fanin) == 0 {
			continue
		}
		m := 0
		for _, f := range nd.Fanin {
			if lv[f] >= lv[nd.ID] {
				return fmt.Errorf("level not monotone on edge %s -> %s (levels %d, %d)",
					c.Nodes[f].Name, nd.Name, lv[f], lv[nd.ID])
			}
			if lv[f] > m {
				m = lv[f]
			}
		}
		if lv[nd.ID] != m+1 {
			return fmt.Errorf("node %s: level %d, expected 1+max(fanin levels) = %d", nd.Name, lv[nd.ID], m+1)
		}
	}

	// Cached derived state must agree with a fresh recomputation: a mutator
	// that forgot to invalidate shows up here, not as silently wrong results.
	if c.levelCache != nil {
		for id, want := range lv {
			if c.levelCache[id] != want {
				return fmt.Errorf("stale level cache at node %d: cached %d, recomputed %d", id, c.levelCache[id], want)
			}
		}
	}
	if c.topoCache != nil {
		if err := checkTopoCache(c); err != nil {
			return err
		}
	}
	if c.fanoutsOK {
		if err := checkFanouts(c); err != nil {
			return err
		}
	}
	if err := checkCSR(c); err != nil {
		return err
	}

	// Unreachable logic: every live non-input node must reach some PO.
	if !opt.AllowUnreachable {
		needed := make([]bool, len(c.Nodes))
		var mark func(int)
		mark = func(id int) {
			if needed[id] {
				return
			}
			needed[id] = true
			for _, f := range c.Nodes[id].Fanin {
				mark(f)
			}
		}
		for _, o := range c.Outputs {
			mark(o)
		}
		for _, nd := range c.Nodes {
			if nd == nil || nd.Type == dead || nd.Type == Input {
				continue
			}
			if !needed[nd.ID] {
				return fmt.Errorf("node %s is unreachable from every primary output", nd.Name)
			}
		}
	}
	return nil
}

// checkCSR audits the frozen CSR view (csr_stale). A view from a generation
// before the current one is legitimate — mutation after Freeze is exactly
// what the generation stamp exists to record — but a view claiming the
// current generation must match a from-scratch rebuild array for array, and
// a view stamped beyond the current generation cannot arise from any legal
// edit sequence. Only called on circuits already proven acyclic, since the
// reference rebuild levelizes. The reference is built by the same cache-free
// code Freeze's full path uses, so the audit also pins the incremental patch
// path against the full one on every checked circuit.
func checkCSR(c *Circuit) error {
	v := c.fz.view
	if v == nil {
		return nil
	}
	if v.gen > c.fz.gen {
		return fmt.Errorf("csr_stale: frozen view at generation %d is ahead of the circuit at %d", v.gen, c.fz.gen)
	}
	if v.gen < c.fz.gen {
		return nil // aged out; the next Freeze refreshes it
	}
	ref := &CSR{}
	lv := make([]int32, len(c.Nodes))
	csrLevels(c, lv)
	repackCSR(ref, c, lv)
	if err := csrEqual(v, ref); err != nil {
		return fmt.Errorf("csr_stale: frozen view diverges from the netlist: %v", err)
	}
	return nil
}

// findCycle runs a three-color DFS over the live nodes and returns a node
// sequence forming a cycle, or nil.
func findCycle(c *Circuit) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, len(c.Nodes))
	var stack []int
	var cyc []int
	var visit func(id int) bool
	visit = func(id int) bool {
		color[id] = gray
		stack = append(stack, id)
		for _, f := range c.Nodes[id].Fanin {
			switch color[f] {
			case gray:
				// Unwind the stack back to f for the witness.
				for i := len(stack) - 1; i >= 0; i-- {
					cyc = append([]int{stack[i]}, cyc...)
					if stack[i] == f {
						break
					}
				}
				return true
			case white:
				if visit(f) {
					return true
				}
			}
		}
		color[id] = black
		stack = stack[:len(stack)-1]
		return false
	}
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead || color[nd.ID] != white {
			continue
		}
		if visit(nd.ID) {
			return cyc
		}
	}
	return nil
}

// freshLevels computes levels by DFS without touching the circuit's caches.
// Must only be called on acyclic circuits.
func freshLevels(c *Circuit) []int {
	lv := make([]int, len(c.Nodes))
	done := make([]bool, len(c.Nodes))
	var visit func(id int) int
	visit = func(id int) int {
		if done[id] {
			return lv[id]
		}
		done[id] = true
		m := -1
		for _, f := range c.Nodes[id].Fanin {
			if l := visit(f); l > m {
				m = l
			}
		}
		lv[id] = m + 1
		return lv[id]
	}
	for _, nd := range c.Nodes {
		if nd != nil && nd.Type != dead {
			visit(nd.ID)
		}
	}
	return lv
}

// checkTopoCache verifies the cached topological order covers exactly the
// live nodes with every fanin before its consumer.
func checkTopoCache(c *Circuit) error {
	pos := make(map[int]int, len(c.topoCache))
	for i, id := range c.topoCache {
		if !c.Alive(id) {
			return fmt.Errorf("stale topo cache: entry %d is not a live node", id)
		}
		if _, dup := pos[id]; dup {
			return fmt.Errorf("stale topo cache: node %d listed twice", id)
		}
		pos[id] = i
	}
	if len(c.topoCache) != c.NumLive() {
		return fmt.Errorf("stale topo cache: %d entries for %d live nodes", len(c.topoCache), c.NumLive())
	}
	for _, id := range c.topoCache {
		for _, f := range c.Nodes[id].Fanin {
			if pos[f] >= pos[id] {
				return fmt.Errorf("stale topo cache: %s not before consumer %s", c.Nodes[f].Name, c.Nodes[id].Name)
			}
		}
	}
	return nil
}

// checkFanouts verifies the cached fanout lists are exactly the multiset
// transpose of the live fanin lists.
func checkFanouts(c *Circuit) error {
	want := make([][]int, len(c.Nodes))
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead {
			continue
		}
		for _, f := range nd.Fanin {
			want[f] = append(want[f], nd.ID)
		}
	}
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead {
			continue
		}
		got := append([]int(nil), nd.fanout...)
		exp := append([]int(nil), want[nd.ID]...)
		sort.Ints(got)
		sort.Ints(exp)
		if len(got) != len(exp) {
			return fmt.Errorf("stale fanout cache at %s: %d consumers cached, %d per fanin lists", nd.Name, len(got), len(exp))
		}
		for i := range got {
			if got[i] != exp[i] {
				return fmt.Errorf("stale fanout cache at %s: cached %v, per fanin lists %v", nd.Name, got, exp)
			}
		}
	}
	return nil
}

// unitPrefixRe matches the name prefix the resynthesis procedures stamp on
// comparison-unit gates: "cu<outID>_", with an extra "u<i>_" component for
// the sub-units of a multi-unit (Section 6) realization. The longest match
// is one unit's group key, so each sub-unit is audited on its own and the
// OR/inverter stitching of a multi-unit realization forms a separate
// (trivially bounded) group.
var unitPrefixRe = regexp.MustCompile(`^cu\d+_(?:u\d+_)?`)

// CheckComparisonUnits verifies the paper's structural testability property
// on every comparison unit the resynthesis procedures have built into c:
// within one unit's gate cone there are at most two paths from any unit
// input to any unit output (Lemma "at most two paths" of Section 2 — the
// basis for full robust path-delay-fault testability). Units are recognized
// by the cu<id>_ name prefix stamped by the optimizer; circuits without such
// nodes pass vacuously.
func CheckComparisonUnits(c *Circuit) error {
	keys, groups := unitGroups(c)
	for _, k := range keys {
		if err := checkUnitGroup(c, k, groups[k]); err != nil {
			return err
		}
	}
	return nil
}

// ComparisonUnitStats summarizes the comparison-unit path audit as data
// instead of a pass/fail verdict: the number of unit groups found and the
// maximum in-group path count from any external input to any group output.
// A certificate records (units, maxPaths) as the proof summary; maxPaths <= 2
// iff CheckComparisonUnits accepts the circuit.
func ComparisonUnitStats(c *Circuit) (units int, maxPaths uint64) {
	keys, groups := unitGroups(c)
	for _, k := range keys {
		if m, _, _ := groupMaxPaths(c, groups[k]); m > maxPaths {
			maxPaths = m
		}
	}
	return len(keys), maxPaths
}

// unitGroups collects the live nodes stamped with a comparison-unit name
// prefix, grouped by that prefix, with the keys in sorted order.
func unitGroups(c *Circuit) ([]string, map[string][]int) {
	groups := map[string][]int{}
	for _, nd := range c.Nodes {
		if nd == nil || nd.Type == dead {
			continue
		}
		if m := unitPrefixRe.FindString(nd.Name); m != "" {
			groups[m] = append(groups[m], nd.ID)
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, groups
}

// checkUnitGroup bounds the in-group path count from every external input of
// the group to every sink of the group.
func checkUnitGroup(c *Circuit, key string, members []int) error {
	max, from, to := groupMaxPaths(c, members)
	if max > 2 {
		return fmt.Errorf("comparison unit %s: %d paths from input %s to output %s (bound is 2)",
			key, max, c.Nodes[from].Name, c.Nodes[to].Name)
	}
	return nil
}

// groupMaxPaths computes the maximum in-group path count over every
// (external input, sink) pair of one unit group, returning the first pair
// attaining it (in sorted scan order).
func groupMaxPaths(c *Circuit, members []int) (max uint64, from, to int) {
	in := map[int]bool{}
	for _, id := range members {
		in[id] = true
	}
	// External inputs: nodes outside the group feeding a member pin.
	extSet := map[int]bool{}
	for _, id := range members {
		for _, f := range c.Nodes[id].Fanin {
			if !in[f] {
				extSet[f] = true
			}
		}
	}
	ext := make([]int, 0, len(extSet))
	for id := range extSet {
		ext = append(ext, id)
	}
	sort.Ints(ext)
	// Sinks: members no member consumes (computed from fanin lists so the
	// check never touches the fanout cache).
	feedsMember := map[int]bool{}
	for _, id := range members {
		for _, f := range c.Nodes[id].Fanin {
			if in[f] {
				feedsMember[f] = true
			}
		}
	}
	var sinks []int
	for _, id := range members {
		if !feedsMember[id] {
			sinks = append(sinks, id)
		}
	}
	sort.Ints(sinks)
	// Member topological order (fanins first), restricted to the group.
	order := make([]int, 0, len(members))
	state := map[int]int8{}
	var visit func(id int)
	visit = func(id int) {
		if state[id] != 0 {
			return
		}
		state[id] = 1
		for _, f := range c.Nodes[id].Fanin {
			if in[f] {
				visit(f)
			}
		}
		order = append(order, id)
	}
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	for _, id := range sorted {
		visit(id)
	}
	// One DP per external input: paths from x to each member, counting only
	// in-group edges plus the crossing pins from x.
	np := map[int]uint64{}
	for _, x := range ext {
		for _, id := range order {
			var sum uint64
			for _, f := range c.Nodes[id].Fanin {
				if f == x {
					sum++
				} else if in[f] {
					sum += np[f]
				}
			}
			np[id] = sum
		}
		for _, s := range sinks {
			if np[s] > max {
				max, from, to = np[s], x, s
			}
		}
	}
	return max, from, to
}
