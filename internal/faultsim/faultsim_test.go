package faultsim

import (
	"math/rand"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/circuit"
	"compsynth/internal/faults"
	"compsynth/internal/gen"
)

// naiveDetect checks detection by brute-force: rebuild the circuit with the
// fault hard-wired and compare outputs.
func naiveDetect(c *circuit.Circuit, f faults.Fault, pi []bool) bool {
	good := c.Eval(pi)
	bad := evalFaulty(c, f, pi)
	for i := range good {
		if good[i] != bad[i] {
			return true
		}
	}
	return false
}

func evalFaulty(c *circuit.Circuit, f faults.Fault, pi []bool) []bool {
	val := make([]bool, len(c.Nodes))
	for i, id := range c.Inputs {
		val[id] = pi[i]
	}
	for _, id := range c.Topo() {
		nd := c.Nodes[id]
		if nd.Type != circuit.Input {
			in := make([]bool, len(nd.Fanin))
			for i, fn := range nd.Fanin {
				in[i] = val[fn]
				if f.Pin == i && f.Node == id {
					in[i] = f.Stuck
				}
			}
			val[id] = nd.Type.Eval(in)
		}
		if f.Pin < 0 && f.Node == id {
			val[id] = f.Stuck
		}
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = val[o]
	}
	return out
}

func TestDetectWordMatchesNaive(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	fl := faults.All(c)
	s := New(c)
	rng := rand.New(rand.NewSource(3))
	words := make([]uint64, 5)
	for round := 0; round < 4; round++ {
		for j := range words {
			words[j] = rng.Uint64()
		}
		s.SetInputs(words)
		s.RunGood()
		for _, f := range fl {
			d := s.DetectWord(f)
			for b := 0; b < 64; b++ {
				pi := make([]bool, 5)
				for j := range pi {
					pi[j] = words[j]&(1<<b) != 0
				}
				want := naiveDetect(c, f, pi)
				if (d&(1<<b) != 0) != want {
					t.Fatalf("fault %v bit %d: sim=%v naive=%v", f, b, !want, want)
				}
			}
		}
	}
}

func TestDetectWordRandomCircuits(t *testing.T) {
	for _, b := range gen.SmallSuite()[:2] {
		c := b.Build()
		fl := faults.Collapse(c)
		s := New(c)
		rng := rand.New(rand.NewSource(11))
		words := make([]uint64, len(c.Inputs))
		for j := range words {
			words[j] = rng.Uint64()
		}
		s.SetInputs(words)
		s.RunGood()
		for _, f := range fl {
			d := s.DetectWord(f)
			// Verify two sampled bits against the naive model.
			for _, bit := range []int{0, 37} {
				pi := make([]bool, len(c.Inputs))
				for j := range pi {
					pi[j] = words[j]&(1<<bit) != 0
				}
				if (d&(1<<bit) != 0) != naiveDetect(c, f, pi) {
					t.Fatalf("%s fault %v bit %d mismatch", b.Name, f, bit)
				}
			}
		}
	}
}

func TestRunRandomC17FullCoverage(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	fl := faults.Collapse(c)
	res := RunRandom(c, fl, 1024, 1)
	if len(res.Remaining) != 0 {
		t.Fatalf("c17 has undetected faults after 1024 random patterns: %v", res.Remaining)
	}
	if res.Detected != res.TotalFaults {
		t.Fatalf("detected %d of %d", res.Detected, res.TotalFaults)
	}
	if res.LastEffective < 1 || res.LastEffective > 1024 {
		t.Fatalf("last effective pattern = %d", res.LastEffective)
	}
	if res.Coverage() != 1 {
		t.Fatalf("coverage = %v", res.Coverage())
	}
}

func TestRunRandomDetectsRedundantAsUndetected(t *testing.T) {
	// f = a OR (a AND b): the AND is redundant; its "AND output sa0" fault
	// is undetectable and must remain.
	c := circuit.New("red")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", a, g1)
	c.MarkOutput(g2)
	fl := []faults.Fault{{Node: g1, Pin: -1, Stuck: false}}
	res := RunRandom(c, fl, 4096, 2)
	if len(res.Remaining) != 1 {
		t.Fatalf("redundant fault detected?! %+v", res)
	}
}

func TestRunRandomDeterministicAcrossRuns(t *testing.T) {
	c, _ := bench.ParseString(bench.C17, "c17")
	fl := faults.Collapse(c)
	r1 := RunRandom(c, fl, 512, 9)
	r2 := RunRandom(c, fl, 512, 9)
	if r1.Detected != r2.Detected || r1.LastEffective != r2.LastEffective {
		t.Fatal("non-deterministic campaign")
	}
}

func TestDetectedBySinglePattern(t *testing.T) {
	// AND(a,b) output sa0 is detected exactly by (1,1).
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.And, "", a, b)
	c.MarkOutput(g)
	f := faults.Fault{Node: g, Pin: -1, Stuck: false}
	cases := []struct {
		pi   []bool
		want bool
	}{
		{[]bool{true, true}, true},
		{[]bool{true, false}, false},
		{[]bool{false, true}, false},
		{[]bool{false, false}, false},
	}
	for _, cse := range cases {
		if got := DetectedBy(c, f, cse.pi); got != cse.want {
			t.Errorf("DetectedBy(%v) = %v, want %v", cse.pi, got, cse.want)
		}
	}
}

func TestBranchVsStemFaultDiffer(t *testing.T) {
	// a fans out to AND(a,b) and NOT(a); branch fault a->AND sa1 is only
	// visible through the AND, stem fault a sa1 also flips the NOT.
	c := circuit.New("t")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.And, "g", a, b)
	n := c.AddGate(circuit.Not, "n", a)
	c.MarkOutput(g)
	c.MarkOutput(n)
	branch := faults.Fault{Node: g, Pin: 0, Stuck: true}
	stem := faults.Fault{Node: a, Pin: -1, Stuck: true}
	pi := []bool{false, false} // a=0, b=0
	// Branch sa1: AND(1,0)=0 = good -> undetected. Stem sa1: NOT flips.
	if DetectedBy(c, branch, pi) {
		t.Fatal("branch fault should be masked at b=0")
	}
	if !DetectedBy(c, stem, pi) {
		t.Fatal("stem fault should be seen through the inverter")
	}
}
