// Command faultsim runs a random-pattern stuck-at fault simulation campaign
// on a .bench netlist (the Table 6 measurement for a single circuit).
//
// Usage:
//
//	faultsim [-patterns n] [-seed n] [-list-remaining] circuit.bench
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"compsynth"
	"compsynth/internal/faults"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultsim: ")
	patterns := flag.Int("patterns", 1<<20, "random patterns to apply")
	seed := flag.Int64("seed", 1, "pattern generator seed")
	list := flag.Bool("list-remaining", false, "list undetected faults")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: faultsim [-patterns n] [-seed n] circuit.bench")
		os.Exit(2)
	}
	c, err := compsynth.LoadBench(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	fl := faults.Collapse(c)
	res := compsynth.StuckAtCampaign(c, *patterns, *seed)
	fmt.Printf("%s: %v\n", c.Name, c.Stats())
	fmt.Printf("collapsed faults: %d\n", len(fl))
	fmt.Printf("detected: %d (%.3f%%), remaining: %d\n",
		res.Detected, 100*res.Coverage(), len(res.Remaining))
	fmt.Printf("last effective pattern: %d of %d applied\n", res.LastEffective, res.Patterns)
	if *list {
		for _, f := range res.Remaining {
			fmt.Printf("  undetected: %v\n", f)
		}
	}
}
