// Command benchjson converts `go test -bench` output on stdin into a JSON
// record suitable for committing as a performance baseline (BENCH_<date>.json,
// written by scripts/bench.sh). For benchmarks run under -cpu 1,N it also
// derives the parallel speedup (serial ns/op divided by N-proc ns/op).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// benchLine matches e.g. "BenchmarkFaultSimParallel-4  12  9876543 ns/op"
// with the optional "-benchmem" columns "4096 B/op  12 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

type result struct {
	Name        string   `json:"name"`
	CPU         int      `json:"cpu"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`  // nil when run without -benchmem
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"` // nil when run without -benchmem
}

type speedup struct {
	Name    string  `json:"name"`
	CPU     int     `json:"cpu"`
	Speedup float64 `json:"speedup"` // serial ns/op over this run's ns/op
}

type report struct {
	Date       string    `json:"date"`
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	NumCPU     int       `json:"num_cpu"`
	Benchmarks []result  `json:"benchmarks"`
	Speedups   []speedup `json:"speedups,omitempty"`
}

func main() {
	rep := report{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		cpu := 1
		if m[2] != "" {
			cpu, _ = strconv.Atoi(m[2])
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, _ := strconv.ParseFloat(m[4], 64)
		res := result{Name: m[1], CPU: cpu, Iterations: iters, NsPerOp: ns}
		if m[5] != "" {
			bytes, _ := strconv.ParseFloat(m[5], 64)
			allocs, _ := strconv.ParseFloat(m[6], 64)
			res.BytesPerOp, res.AllocsPerOp = &bytes, &allocs
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	serial := map[string]float64{}
	for _, r := range rep.Benchmarks {
		if r.CPU == 1 {
			serial[r.Name] = r.NsPerOp
		}
	}
	for _, r := range rep.Benchmarks {
		base, ok := serial[r.Name]
		if !ok || r.CPU == 1 || r.NsPerOp == 0 {
			continue
		}
		rep.Speedups = append(rep.Speedups, speedup{
			Name: r.Name, CPU: r.CPU, Speedup: base / r.NsPerOp,
		})
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
