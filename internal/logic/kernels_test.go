package logic

import (
	"math/rand"
	"testing"
)

func randTT(rng *rand.Rand, n int) TT {
	t := New(n)
	for j := range t.words {
		t.words[j] = rng.Uint64()
	}
	t.words[len(t.words)-1] &= t.mask()
	return t
}

// expand widens an (n-1)-variable cofactor back to n variables by making the
// result independent of x_i — the reference semantics of CofactorKeepInto.
func expand(cof TT, n, i int) TT {
	r := New(n)
	pos := n - i
	lowMask := (1 << pos) - 1
	for m := 0; m < r.Size(); m++ {
		small := (m>>1)&^lowMask | m&lowMask
		if cof.Get(small) {
			r.Set(m, true)
		}
	}
	return r
}

func TestCofactorKeepIntoMatchesCofactor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 8; n++ {
		for trial := 0; trial < 20; trial++ {
			f := randTT(rng, n)
			dst := New(n)
			for i := 1; i <= n; i++ {
				for _, v := range []bool{false, true} {
					f.CofactorKeepInto(dst, i, v)
					want := expand(f.Cofactor(i, v), n, i)
					if !dst.Equal(want) {
						t.Fatalf("n=%d i=%d v=%v: got %s want %s (f=%s)",
							n, i, v, dst, want, f)
					}
					if dst.DependsOn(i) {
						t.Fatalf("n=%d i=%d v=%v: cofactor still depends on x_%d", n, i, v, i)
					}
				}
			}
		}
	}
}

func TestCofactorKeepIntoPreservesInvalidBitInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for n := 1; n <= 5; n++ {
		f := randTT(rng, n)
		dst := New(n)
		for i := 1; i <= n; i++ {
			f.CofactorKeepInto(dst, i, true)
			if dst.words[0]&^dst.mask() != 0 {
				t.Fatalf("n=%d i=%d: invalid high bits set: %x", n, i, dst.words[0])
			}
		}
	}
}

func TestPermuteIntoMatchesPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 1; n <= 7; n++ {
		f := randTT(rng, n)
		perm := rng.Perm(n)
		dst := New(n)
		dst.words[0] = ^uint64(0) // ensure stale contents are cleared
		f.PermuteInto(dst, perm)
		if !dst.Equal(f.Permute(perm)) {
			t.Fatalf("n=%d perm=%v: PermuteInto != Permute", n, perm)
		}
	}
}

func TestNotIntoMatchesNot(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for n := 1; n <= 8; n++ {
		f := randTT(rng, n)
		dst := New(n)
		f.NotInto(dst)
		if !dst.Equal(f.Not()) {
			t.Fatalf("n=%d: NotInto != Not", n)
		}
	}
}

func TestCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := randTT(rng, 7)
	g := New(7)
	g.CopyFrom(f)
	if !g.Equal(f) {
		t.Fatal("CopyFrom mismatch")
	}
	g.Set(0, !g.Get(0))
	if g.Equal(f) {
		t.Fatal("CopyFrom aliased the word slice")
	}
}

func TestIsConstDirect(t *testing.T) {
	for n := 0; n <= 8; n++ {
		if !Const(n, false).IsConst(false) || Const(n, false).IsConst(true) {
			t.Fatalf("n=%d: const-0 misclassified", n)
		}
		if !Const(n, true).IsConst(true) || Const(n, true).IsConst(false) {
			t.Fatalf("n=%d: const-1 misclassified", n)
		}
		if n >= 1 {
			v := Var(n, 1)
			if v.IsConst(false) || v.IsConst(true) {
				t.Fatalf("n=%d: x1 classified constant", n)
			}
		}
	}
}

func TestDependsOnWordParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for n := 1; n <= 8; n++ {
		for trial := 0; trial < 20; trial++ {
			f := randTT(rng, n)
			for i := 1; i <= n; i++ {
				want := !f.Cofactor(i, false).Equal(f.Cofactor(i, true))
				if got := f.DependsOn(i); got != want {
					t.Fatalf("n=%d i=%d: DependsOn=%v want %v (f=%s)", n, i, got, want, f)
				}
			}
		}
	}
}

func TestAllocFreeKernels(t *testing.T) {
	f := randTT(rand.New(rand.NewSource(17)), 8)
	dst := New(8)
	if n := testing.AllocsPerRun(100, func() {
		f.CofactorKeepInto(dst, 3, true)
		f.NotInto(dst)
		_ = f.IsConst(false)
		_ = f.DependsOn(5)
		_ = f.Key()
	}); n != 0 {
		t.Fatalf("hot kernels allocate: %v allocs/run", n)
	}
}
