// Resynthesis walk-through: generate a synthetic benchmark, make it
// irredundant, then compare Procedure 2 (minimum gates), Procedure 3
// (minimum paths) and the combined objective of Section 4.3.
package main

import (
	"fmt"
	"log"

	"compsynth"
	"compsynth/internal/gen"
	"compsynth/internal/resynth"
)

func main() {
	bench := gen.Bench{Name: "demo", Params: gen.Params{
		Name: "demo", Inputs: 24, Outputs: 16, Gates: 220, Layers: 9,
		MaxFanin: 3, Locality: 0.7, InvProb: 0.15, Seed: 4242,
	}}
	c := bench.Build()

	rr, err := compsynth.RemoveRedundancy(c)
	if err != nil {
		log.Fatal(err)
	}
	c = rr.Circuit
	p0, _ := compsynth.CountPaths(c)
	fmt.Printf("irredundant input: %v, %d paths (%d redundancies removed)\n\n",
		c.Stats(), p0, rr.Removed)

	objectives := []struct {
		name string
		obj  resynth.Objective
	}{
		{"Procedure 2 (min gates)", resynth.MinGates},
		{"Procedure 3 (min paths)", resynth.MinPaths},
		{"combined (Sec. 4.3)", resynth.Combined},
	}
	fmt.Printf("%-26s %8s %8s %10s %10s\n", "objective", "gates", "gates'", "paths", "paths'")
	for _, o := range objectives {
		opt := resynth.DefaultOptions()
		opt.K = 5
		opt.Objective = o.obj
		res, err := compsynth.Optimize(c, opt)
		if err != nil {
			log.Fatal(err)
		}
		if !compsynth.Equivalent(c, res.Circuit) {
			log.Fatalf("%s: rewrite changed the function", o.name)
		}
		fmt.Printf("%-26s %8d %8d %10d %10d\n", o.name,
			res.GatesBefore, res.GatesAfter, res.PathsBefore, res.PathsAfter)
	}
	fmt.Println("\nall rewrites verified equivalent")
}
