package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// The loader turns directories into type-checked packages using only the
// standard library: go/parser for syntax, go/types for semantics, and the
// go/importer "source" importer for standard-library dependencies. Imports
// within this module are resolved by mapping the import path under the
// go.mod module path onto the repository directory tree and type-checking
// recursively, so the loader needs no `go list` subprocess and works on any
// directory — including fixture packages under testdata/ that the go tool
// itself refuses to build.

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("compsynth/internal/resynth")
	Name  string // package name ("resynth")
	Dir   string
	Files []*ast.File // non-test files, sorted by file name
	Pkg   *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// Loader loads and caches packages of one module.
type Loader struct {
	Root    string // absolute module root (directory holding go.mod)
	ModPath string // module path from go.mod

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package
	conf types.Config
}

// NewLoader builds a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Root:    root,
		ModPath: modpath,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*Package{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	l.conf = types.Config{Importer: (*loaderImporter)(l)}
	return l, nil
}

// findModule walks upward from dir to the nearest go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
	}
}

// pathForDir maps a directory inside the module to its import path.
func (l *Loader) pathForDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.Root)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// dirForPath is the inverse mapping for import paths under the module.
func (l *Loader) dirForPath(path string) (string, bool) {
	if path == l.ModPath {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Load type-checks the package in dir (non-test files only) and returns it.
// Results are cached per import path.
func (l *Loader) Load(dir string) (*Package, error) {
	path, err := l.pathForDir(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle guard
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		full := filepath.Join(dir, n)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !buildTagsMatch(src) {
			continue // constrained out (e.g. //go:build ignore)
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tpkg, err := l.conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	p := &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Dir:   dir,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
		Fset:  l.fset,
	}
	l.pkgs[path] = p
	return p, nil
}

// Loaded returns every package the loader has type-checked so far —
// requested directories and their transitively imported module packages —
// sorted by import path. The call-graph builder derives node ids from this
// order, so it must be deterministic.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		if p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// buildTagsMatch evaluates a file's leading build constraints (//go:build
// and legacy // +build lines) against the running toolchain's tag set:
// GOOS, GOARCH, "gc", and every go1.N version tag. Files constrained out —
// most importantly //go:build ignore helpers — are skipped exactly as the
// go tool skips them.
func buildTagsMatch(src []byte) bool {
	ok := func(tag string) bool {
		if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" {
			return true
		}
		return strings.HasPrefix(tag, "go1") // any release-version tag
	}
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if expr, err := constraint.Parse(trimmed); err == nil {
				if !expr.Eval(ok) {
					return false
				}
			}
			continue
		}
		break // package clause (or /* comment */, which cannot carry tags)
	}
	return true
}

// loaderImporter adapts Loader to types.Importer: module-internal paths are
// type-checked from source in-process, everything else (the standard
// library) goes through the source importer.
type loaderImporter Loader

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(im)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirForPath(path); ok {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, l.Root, 0)
}

// ExpandPatterns resolves sftlint's command-line patterns to package
// directories. A pattern is either a directory or a directory followed by
// "/..." for a recursive walk. Walks skip hidden directories and — matching
// the go tool — directories named "testdata", so fixture packages never leak
// into a default `./...` run. Only directories containing at least one
// non-test .go file are returned.
func ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		if !recursive {
			if hasGoFiles(pat) {
				add(pat)
			} else {
				return nil, fmt.Errorf("no Go files in %s", pat)
			}
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(p)
			if p != pat && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
