package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compsynth/internal/lint"
)

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	f := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(f, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBaselineApply(t *testing.T) {
	f := writeBaseline(t, `{
		"version": 1,
		"findings": [
			{"id": "purity/x/aaaa", "justification": "pre-warmed serially"},
			{"id": "wallclock/gone/bbbb", "justification": "was removed last release"}
		],
		"debt": {}
	}`)
	b, err := lint.LoadBaseline(f)
	if err != nil {
		t.Fatal(err)
	}
	diags := []lint.Diagnostic{
		{File: "a.go", Rule: "purity", Msg: "old", ID: "purity/x/aaaa"},
		{File: "b.go", Rule: "sharedmut", Msg: "new", ID: "sharedmut/y/cccc"},
	}
	fresh, stale := b.Apply(diags)
	if len(fresh) != 1 || fresh[0].ID != "sharedmut/y/cccc" {
		t.Errorf("fresh = %v, want exactly the unbaselined finding", fresh)
	}
	if len(stale) != 1 || stale[0] != "wallclock/gone/bbbb" {
		t.Errorf("stale = %v, want exactly the unmatched entry", stale)
	}
}

func TestBaselineJustificationMandatory(t *testing.T) {
	f := writeBaseline(t, `{
		"version": 1,
		"findings": [{"id": "purity/x/aaaa", "justification": "  "}],
		"debt": {}
	}`)
	if _, err := lint.LoadBaseline(f); err == nil || !strings.Contains(err.Error(), "justification") {
		t.Errorf("blank justification must be rejected, got %v", err)
	}
	f = writeBaseline(t, `{"version": 2, "findings": [], "debt": {}}`)
	if _, err := lint.LoadBaseline(f); err == nil {
		t.Error("unknown baseline version must be rejected")
	}
	f = writeBaseline(t, `{
		"version": 1,
		"findings": [
			{"id": "a", "justification": "x"},
			{"id": "a", "justification": "y"}
		],
		"debt": {}
	}`)
	if _, err := lint.LoadBaseline(f); err == nil {
		t.Error("duplicate baseline IDs must be rejected")
	}
}

func TestDebtCompareDirections(t *testing.T) {
	b := &lint.Baseline{
		Version: 1,
		Debt: map[string]lint.DebtCounts{
			"internal/a": {Ordered: 2, Speculative: 1},
			"internal/b": {Ordered: 1},
		},
	}
	current := map[string]lint.DebtCounts{
		"internal/a": {Ordered: 3, Speculative: 1}, // grew
		"internal/b": {},                           // shrank (paid off)
	}
	errs := lint.CompareDebt(current, b)
	if len(errs) != 2 {
		t.Fatalf("got %d drift errors, want 2: %v", len(errs), errs)
	}
	if !strings.Contains(errs[0], "grew") || !strings.Contains(errs[0], "internal/a") {
		t.Errorf("growth message wrong: %s", errs[0])
	}
	if !strings.Contains(errs[1], "shrank") || !strings.Contains(errs[1], "internal/b") {
		t.Errorf("shrink message wrong: %s", errs[1])
	}
	if errs := lint.CompareDebt(map[string]lint.DebtCounts{
		"internal/a": {Ordered: 2, Speculative: 1},
		"internal/b": {Ordered: 1},
	}, b); len(errs) != 0 {
		t.Errorf("matching counts must not drift: %v", errs)
	}
}

// TestRepoBaselineValid: the committed ledger parses, every entry is
// justified, and the debt counts carry the right shape.
func TestRepoBaselineValid(t *testing.T) {
	root := repoRoot(t)
	b, err := lint.LoadBaseline(filepath.Join(root, "lint_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range b.Findings {
		if len(strings.TrimSpace(e.Justification)) < 20 {
			t.Errorf("entry %s: justification too thin to be reviewable: %q", e.ID, e.Justification)
		}
	}
}
