package logic

// Allocation-free, word-parallel kernels for the identification hot path.
// The exact comparison-function search cofactors tables at every recursion
// step; these kernels keep that inner loop free of per-step slice and map
// allocations by writing into caller-owned scratch tables and by operating
// on whole 64-bit words.

// varMask6 marks, within one 64-pattern word, the minterms whose bit at
// position pos (0..5) is 1 — the single-word tables of the six lowest
// variables, the standard truth-table constants.
var varMask6 = [6]uint64{
	0xAAAAAAAAAAAAAAAA, // pos 0
	0xCCCCCCCCCCCCCCCC, // pos 1
	0xF0F0F0F0F0F0F0F0, // pos 2
	0xFF00FF00FF00FF00, // pos 3
	0xFFFF0000FFFF0000, // pos 4
	0xFFFFFFFF00000000, // pos 5
}

// CofactorKeepInto writes the cofactor of t with x_i (1-based) fixed to v
// into dst, KEEPING the variable count: the chosen half is duplicated into
// the other half, so dst is a table over the same n variables that no
// longer depends on x_i. dst must come from New(t.Vars()) (or a previous
// call with the same n); t and dst must not alias.
//
// Keeping tables full-width is what makes the recursive search
// allocation-free: every depth reuses fixed-size scratch instead of
// materializing progressively narrower tables.
func (t TT) CofactorKeepInto(dst TT, i int, v bool) {
	if i < 1 || i > t.n {
		panic("logic: CofactorKeepInto variable out of range")
	}
	if dst.n != t.n {
		panic("logic: CofactorKeepInto width mismatch")
	}
	pos := t.n - i
	if pos < 6 {
		mask := varMask6[pos]
		shift := uint(1) << uint(pos)
		if v {
			for j, w := range t.words {
				x := w & mask
				dst.words[j] = x | x>>shift
			}
		} else {
			for j, w := range t.words {
				x := w &^ mask
				dst.words[j] = x | x<<shift
			}
		}
		return
	}
	block := 1 << (pos - 6)
	for j := range t.words {
		src := j &^ block
		if v {
			src = j | block
		}
		dst.words[j] = t.words[src]
	}
}

// PermuteInto is Permute writing into caller-owned dst (from New(t.Vars())).
// t and dst must not alias.
func (t TT) PermuteInto(dst TT, perm []int) {
	if len(perm) != t.n {
		panic("logic: permutation length mismatch")
	}
	if dst.n != t.n {
		panic("logic: PermuteInto width mismatch")
	}
	n := t.n
	for j := range dst.words {
		dst.words[j] = 0
	}
	for m := 0; m < t.Size(); m++ {
		var old int
		for i := 0; i < n; i++ {
			bit := (m >> (n - 1 - i)) & 1
			old |= bit << (n - 1 - perm[i])
		}
		if t.Get(old) {
			dst.words[m>>6] |= uint64(1) << (m & 63)
		}
	}
}

// NotInto writes the complement of t into dst (from New(t.Vars())).
func (t TT) NotInto(dst TT) {
	if dst.n != t.n {
		panic("logic: NotInto width mismatch")
	}
	for j, w := range t.words {
		dst.words[j] = ^w
	}
	dst.words[len(dst.words)-1] &= t.mask()
}

// CopyFrom overwrites t's contents with o's (same variable count).
func (t TT) CopyFrom(o TT) {
	if t.n != o.n {
		panic("logic: CopyFrom width mismatch")
	}
	copy(t.words, o.words)
}
