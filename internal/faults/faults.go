// Package faults builds single stuck-at fault lists for combinational
// circuits and performs structural equivalence collapsing.
//
// Fault sites follow the line model: every node output (stem) and every gate
// input pin (fanout branch) can be stuck at 0 or 1.
package faults

import (
	"fmt"
	"sort"

	"compsynth/internal/circuit"
)

// Fault is a single stuck-at fault. Pin == -1 places the fault on the output
// stem of Node; otherwise the fault is on fanin pin Pin of gate Node.
type Fault struct {
	Node  int
	Pin   int
	Stuck bool // stuck-at value
}

func (f Fault) String() string {
	v := 0
	if f.Stuck {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("n%d/sa%d", f.Node, v)
	}
	return fmt.Sprintf("n%d.in%d/sa%d", f.Node, f.Pin, v)
}

// All returns every stuck-at fault of the circuit: two per stem and two per
// gate-input pin. Branch faults are only generated for stems that actually
// fan out to more than one pin (single-pin connections are equivalent to the
// stem and covered by it).
func All(c *circuit.Circuit) []Fault {
	var out []Fault
	c.RebuildFanouts()
	for _, nd := range c.Nodes {
		if nd == nil || !c.Alive(nd.ID) {
			continue
		}
		// Constants carry no faults; completely unconnected lines (e.g. an
		// unused primary input) have vacuously undetectable faults and are
		// excluded from the universe.
		connected := len(c.Fanouts(nd.ID))+c.NumPOUses(nd.ID) > 0
		if nd.Type != circuit.Const0 && nd.Type != circuit.Const1 && connected {
			out = append(out, Fault{nd.ID, -1, false}, Fault{nd.ID, -1, true})
		}
		for pin, f := range nd.Fanin {
			if len(c.Fanouts(f))+c.NumPOUses(f) > 1 {
				out = append(out, Fault{nd.ID, pin, false}, Fault{nd.ID, pin, true})
			}
		}
	}
	return out
}

// Collapse performs structural equivalence collapsing on the full fault list
// and returns one representative per equivalence class:
//
//   - BUF/NOT: the input fault is equivalent to the corresponding
//     (inverted for NOT) output fault.
//   - AND/NAND: an input stuck-at-0 is equivalent to the output
//     stuck-at-0 (stuck-at-1 for NAND).
//   - OR/NOR: an input stuck-at-1 is equivalent to the output
//     stuck-at-1 (stuck-at-0 for NOR).
//
// Representatives are chosen deterministically (smallest fault in the class
// under an arbitrary total order).
func Collapse(c *circuit.Circuit) []Fault {
	full := All(c)
	idx := map[Fault]int{}
	for i, f := range full {
		idx[f] = i
	}
	parent := make([]int, len(full))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b Fault) {
		ia, oka := idx[a]
		ib, okb := idx[b]
		if !oka || !okb {
			return
		}
		ra, rb := find(ia), find(ib)
		if ra != rb {
			parent[ra] = rb
		}
	}
	c.RebuildFanouts()
	for _, nd := range c.Nodes {
		if nd == nil || !c.Alive(nd.ID) {
			continue
		}
		// A single-pin connection: the driver's stem fault is the
		// representative site; pin faults were not generated.
		pinFault := func(pin int, v bool) Fault {
			f := nd.Fanin[pin]
			if len(c.Fanouts(f))+c.NumPOUses(f) > 1 {
				return Fault{nd.ID, pin, v}
			}
			return Fault{f, -1, v}
		}
		switch nd.Type {
		case circuit.Buf:
			union(pinFault(0, false), Fault{nd.ID, -1, false})
			union(pinFault(0, true), Fault{nd.ID, -1, true})
		case circuit.Not:
			union(pinFault(0, false), Fault{nd.ID, -1, true})
			union(pinFault(0, true), Fault{nd.ID, -1, false})
		case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
			ctl, _ := nd.Type.ControllingValue()
			outV := ctl != nd.Type.Inverting()
			for pin := range nd.Fanin {
				union(pinFault(pin, ctl), Fault{nd.ID, -1, outV})
			}
		}
	}
	classRep := map[int]Fault{}
	for i, f := range full {
		r := find(i)
		if cur, ok := classRep[r]; !ok || less(f, cur) {
			classRep[r] = f
		}
	}
	out := make([]Fault, 0, len(classRep))
	for _, f := range classRep {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

func less(a, b Fault) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Pin != b.Pin {
		return a.Pin < b.Pin
	}
	return !a.Stuck && b.Stuck
}
