package compsynth

import (
	"strings"
	"testing"

	"compsynth/internal/bench"
	"compsynth/internal/logic"
)

func parse(t *testing.T, src string) *Circuit {
	t.Helper()
	c, err := ParseBench(strings.NewReader(src), "t")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPublicFlowEndToEnd(t *testing.T) {
	c := parse(t, bench.C17)
	n, err := CountPaths(c)
	if err != nil || n != 11 {
		t.Fatalf("CountPaths = %d, %v", n, err)
	}
	if CountPathsBig(c).Int64() != 11 {
		t.Fatal("big count mismatch")
	}
	res, err := OptimizeGates(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(c, res.Circuit) {
		t.Fatal("OptimizeGates broke equivalence")
	}
	res3, err := OptimizePaths(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(c, res3.Circuit) {
		t.Fatal("OptimizePaths broke equivalence")
	}
	rr, err := RemoveRedundancy(res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(c, rr.Circuit) {
		t.Fatal("RemoveRedundancy broke equivalence")
	}
	sa := StuckAtCampaign(rr.Circuit, 2048, 1)
	if sa.Coverage() != 1 {
		t.Fatalf("c17 flow result not fully stuck-at testable: %+v", sa)
	}
	pd := PathDelayCampaign(rr.Circuit, 2000, 0, 1)
	if pd.TotalFaults == 0 || uint64(pd.Detected) > pd.TotalFaults {
		t.Fatalf("PDF campaign inconsistent: %+v", pd)
	}
	tm := TechMap(rr.Circuit)
	if tm.Literals <= 0 {
		t.Fatalf("TechMap: %v", tm)
	}
}

func TestPublicBenchRoundTrip(t *testing.T) {
	c := parse(t, bench.C17)
	var sb strings.Builder
	if err := WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench(strings.NewReader(sb.String()), "rt")
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(c, c2) {
		t.Fatal("round trip changed function")
	}
}

func TestPublicIdentify(t *testing.T) {
	f := logic.FromMinterms(4, []int{1, 5, 6, 9, 10, 14})
	spec, ok := IdentifyComparison(f)
	if !ok {
		t.Fatal("paper example not identified via public API")
	}
	if !spec.Table().Equal(f) {
		t.Fatal("spec table mismatch")
	}
}

func TestPublicBaseline(t *testing.T) {
	c := parse(t, bench.C17)
	res, err := OptimizeBaseline(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(c, res.Circuit) {
		t.Fatal("baseline broke equivalence")
	}
}

func TestPublicCircuitConstruction(t *testing.T) {
	c := NewCircuit("api")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(Nand, "g", a, b)
	c.MarkOutput(g)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	out := c.Eval([]bool{true, true})
	if out[0] != false {
		t.Fatal("NAND(1,1) != 0")
	}
}

func TestPONamePreservation(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
na = NOT(a)
t1 = AND(na, b)
t2 = AND(a, b)
f = OR(t1, t2, c)
`
	c := parse(t, src)
	res, err := OptimizeGates(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	name := res.Circuit.Nodes[res.Circuit.Outputs[0]].Name
	if name != "f" {
		t.Fatalf("output name not preserved: %q", name)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := parse(t, bench.C17)
	path := t.TempDir() + "/c17.bench"
	if err := SaveBench(c, path); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(c, c2) {
		t.Fatal("file round trip changed function")
	}
	if _, err := LoadBench(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDefaultOptimizeOptions(t *testing.T) {
	opt := DefaultOptimizeOptions()
	if opt.K != 5 || opt.MaxPasses <= 0 {
		t.Fatalf("unexpected defaults: %+v", opt)
	}
	c := parse(t, bench.Adder4)
	res, err := Optimize(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(c, res.Circuit) {
		t.Fatal("defaults broke equivalence")
	}
}
