// Package digest provides a cheap 128-bit FNV-1a-style fingerprint over
// machine words. It replaces the string-building cache keys that used to
// dominate allocation in the resynthesis hot loops: a D is a fixed-size
// comparable value, so it can key Go maps and the sharded par.Cache without
// ever materializing a per-lookup string.
//
// The construction is FNV-1a widened to 128 bits and fed 64 bits at a time
// (xor the word into the low half, multiply by the 128-bit FNV prime
// 2^88 + 0x13B modulo 2^128). Processing whole words instead of bytes keeps
// the per-word cost at one xor plus three multiplies while preserving the
// avalanche behavior that makes accidental collisions astronomically
// unlikely. The digest is deterministic across processes — unlike
// hash/maphash — so values derived from it (e.g. per-truth-table RNG seeds)
// are stable run to run.
package digest

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// fnvPrime128 = 2^88 + 0x13B; split below for 64-bit arithmetic.
const primeLow = 0x13B

// D is a 128-bit fingerprint. The zero value is NOT the initial state; use
// New.
type D struct {
	Lo, Hi uint64
}

// New returns the 128-bit FNV-1a offset basis.
func New() D {
	return D{Lo: 0x62b821756295c58d, Hi: 0x6c62272e07bb0142}
}

// mulPrime multiplies d by the 128-bit FNV prime modulo 2^128.
func (d D) mulPrime() D {
	// d * (2^88 + primeLow) mod 2^128:
	//   low-product  = (Hi,Lo) * primeLow
	//   shift-product = (Hi,Lo) << 88  -> only Lo<<24 survives in the high word
	hi, lo := bits.Mul64(d.Lo, primeLow)
	hi += d.Hi * primeLow
	hi += d.Lo << 24
	return D{Lo: lo, Hi: hi}
}

// Word absorbs one 64-bit word.
func (d D) Word(x uint64) D {
	d.Lo ^= x
	return d.mulPrime()
}

// Int absorbs one int.
func (d D) Int(x int) D {
	return d.Word(uint64(x))
}

// Words absorbs a word slice (length is NOT absorbed; callers that need
// length framing should absorb it explicitly).
func (d D) Words(xs []uint64) D {
	for _, x := range xs {
		d = d.Word(x)
	}
	return d
}

// Ints absorbs an int slice, framing it with its length so [1,2] and
// [1,2,0] cannot collide trivially.
func (d D) Ints(xs []int) D {
	d = d.Int(len(xs))
	for _, x := range xs {
		d = d.Int(x)
	}
	return d
}

// Bytes absorbs a byte slice, framed with its length so concatenations
// cannot collide trivially. Bytes are consumed eight at a time
// (little-endian) with a zero-padded final word; the length framing keeps
// "ab"+"c" distinct from "a"+"bc".
func (d D) Bytes(p []byte) D {
	d = d.Int(len(p))
	for len(p) >= 8 {
		d = d.Word(binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	if len(p) > 0 {
		var w uint64
		for i, b := range p {
			w |= uint64(b) << (8 * uint(i))
		}
		d = d.Word(w)
	}
	return d
}

// Hex renders the fingerprint as 32 lowercase hex digits, high half first.
// This is the stable textual form used by the run ledger and certificates.
func (d D) Hex() string {
	return fmt.Sprintf("%016x%016x", d.Hi, d.Lo)
}

// Sum64 folds the fingerprint to 64 bits (for RNG seeding).
func (d D) Sum64() uint64 {
	return d.Lo ^ bits.RotateLeft64(d.Hi, 32)
}
