package lint

import (
	"fmt"
	"os"
	"path/filepath"
)

// Golden regeneration: the injected-violation fixtures under
// internal/lint/testdata/src pin every rule's exact output in golden.txt
// and golden.json. `sftlint -update-golden` regenerates both in place;
// lint_test.go asserts the committed files match a fresh regeneration, so
// goldens can never drift from what this code actually produces.

// ModuleRoot finds the module root (directory holding go.mod) above dir.
func ModuleRoot(dir string) (string, error) {
	root, _, err := findModule(dir)
	return root, err
}

// fixtureConfig is the exact configuration the golden files are generated
// under: every fixture package treated as deterministic, paths relative to
// the module root.
func fixtureConfig(root string) Config {
	return Config{DeterministicAll: true, RelativeTo: root}
}

// GoldenContents analyzes the fixture packages and renders the two golden
// payloads.
func GoldenContents(root string) (text, jsonOut string, err error) {
	dirs, err := ExpandPatterns([]string{filepath.Join(root, "internal/lint/testdata/src") + "/..."})
	if err != nil {
		return "", "", err
	}
	diags, err := Analyze(dirs, fixtureConfig(root))
	if err != nil {
		return "", "", err
	}
	text = FormatText(diags)
	jsonOut, err = FormatJSON(diags)
	return text, jsonOut, err
}

// UpdateGoldens regenerates golden.txt and golden.json in place and returns
// the files written.
func UpdateGoldens(root string) ([]string, error) {
	text, jsonOut, err := GoldenContents(root)
	if err != nil {
		return nil, err
	}
	txtPath := filepath.Join(root, "internal/lint/testdata/golden.txt")
	jsonPath := filepath.Join(root, "internal/lint/testdata/golden.json")
	if err := os.WriteFile(txtPath, []byte(text), 0o644); err != nil {
		return nil, err
	}
	if err := os.WriteFile(jsonPath, []byte(jsonOut), 0o644); err != nil {
		return nil, err
	}
	return []string{txtPath, jsonPath}, nil
}

// Debt loads the given package directories and tallies their in-source
// suppression comments (the -debt subcommand's engine).
func Debt(dirs []string) (map[string]DebtCounts, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: no packages to analyze")
	}
	l, err := NewLoader(dirs[0])
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		p, err := l.Load(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return CountDebt(l, pkgs), nil
}
