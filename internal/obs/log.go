package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Logger is the run logger shared by the command-line tools: Printf carries
// the tool's primary output, Verbosef carries progress detail that only
// appears under -v (stamped with elapsed time). A nil *Logger no-ops.
type Logger struct {
	mu      sync.Mutex
	out     io.Writer // primary output (results)
	err     io.Writer // progress / diagnostics
	verbose bool
	start   time.Time
}

// NewLogger builds a logger writing results to out and verbose progress to
// errw.
func NewLogger(out, errw io.Writer, verbose bool) *Logger {
	return &Logger{out: out, err: errw, verbose: verbose, start: time.Now()}
}

// Verbose reports whether -v output is enabled.
func (l *Logger) Verbose() bool {
	return l != nil && l.verbose
}

// Printf writes a primary result line.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.out, format+"\n", args...)
}

// Verbosef writes a progress line when verbose mode is on, prefixed with the
// elapsed wall-clock time.
func (l *Logger) Verbosef(format string, args ...any) {
	if l == nil || !l.verbose {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.err, "[+%8.3fs] "+format+"\n",
		append([]any{time.Since(l.start).Seconds()}, args...)...)
}
