package par

import (
	"compsynth/internal/metric"
	"compsynth/internal/obs"
)

// Live queue telemetry: how many items are pending between drains, how many
// drain rounds ran, and how many items were pushed back after the first
// drain (re-queued work, e.g. conflict losers in the sharded resynthesis
// sweep). Scheduling-adjacent, so Live registry only — never in run reports.
var (
	lQueuePending  = metric.Live().Gauge("par.queue_pending")
	lQueueDrains   = metric.Live().Counter("par.queue_drains")
	lQueueRequeued = metric.Live().Counter("par.queue_requeued")
)

// Queue is a deterministic work queue with re-queue support, built for
// speculate/validate/re-queue rounds: a serial coordinator Pushes items
// (regions, tasks), Drain snapshots the pending items and fans them out over
// Run's atomic claiming, and items Pushed after a drain — conflict losers —
// form the next round's snapshot.
//
// The determinism contract matches the rest of the package: the snapshot
// order is exactly push order, every item of a drain is processed exactly
// once, and fn must write only item-indexed state, so results are
// bit-identical for every worker count. Push and Len are coordinator-side
// only — they must not be called concurrently with an in-flight Drain
// (including from fn itself); re-queues happen between drains.
type Queue[T any] struct {
	pending []T
	drained bool
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] {
	return &Queue[T]{}
}

// Push appends one item to the pending round.
func (q *Queue[T]) Push(v T) {
	q.pending = append(q.pending, v)
	if q.drained {
		lQueueRequeued.Inc()
	}
	lQueuePending.Set(int64(len(q.pending)))
}

// Len returns the number of items pending for the next drain.
func (q *Queue[T]) Len() int { return len(q.pending) }

// Drain snapshots the pending items, clears the queue, and runs
// fn(worker, item) for each over min(Workers(workers), items) goroutines via
// Run. Returns the number of items processed. With nothing pending it
// returns 0 without spawning anything.
func (q *Queue[T]) Drain(tr *obs.Tracer, name string, workers int, fn func(worker int, item T)) int {
	items := q.pending
	q.pending = nil
	q.drained = true
	lQueuePending.Set(0)
	if len(items) == 0 {
		return 0
	}
	lQueueDrains.Inc()
	Run(tr, name, workers, len(items), func(w, i int) {
		fn(w, items[i])
	})
	return len(items)
}
