// Package redundancy removes stuck-at redundancies from combinational
// circuits, in the spirit of Kajihara/Shiba/Kinoshita [15] as used by the
// paper: any line with an undetectable stuck-at-v fault can be replaced by
// the constant v without changing the circuit function; constant propagation
// and dead-logic sweeping then shrink the netlist. The pass iterates until
// the collapsed fault list is fully testable (or the ATPG aborts).
package redundancy

import (
	"encoding/json"
	"fmt"

	"compsynth/internal/atpg"
	"compsynth/internal/circuit"
	"compsynth/internal/faults"
	"compsynth/internal/faultsim"
	"compsynth/internal/obs"
	"compsynth/internal/simulate"
)

// Removal metrics.
var (
	mRounds    = obs.C("redundancy.rounds")
	mRedundant = obs.C("redundancy.faults_proven_redundant")
	mAborted   = obs.C("redundancy.faults_aborted")
)

// Options configures the removal pass.
type Options struct {
	// FilterPatterns random patterns drop obviously-testable faults before
	// ATPG runs (0 = default 2048).
	FilterPatterns int
	// BacktrackLimit bounds each PODEM call.
	BacktrackLimit int
	// MaxRounds bounds remove-and-recheck iterations.
	MaxRounds int
	// Verify re-checks functional equivalence after every round.
	Verify bool
	Seed   int64

	// Tracer records per-round spans when non-nil; nil (the default) keeps
	// the zero-overhead fast path.
	Tracer *obs.Tracer
}

// DefaultOptions returns a configuration suited to the benchmark suite.
func DefaultOptions() Options {
	return Options{FilterPatterns: 2048, BacktrackLimit: 20000, MaxRounds: 20, Verify: true, Seed: 15}
}

// Result reports a removal run.
type Result struct {
	Circuit     *circuit.Circuit
	Rounds      int
	Removed     int // redundant faults rewritten
	Aborted     int // faults the ATPG gave up on (left in place)
	GatesBefore int
	GatesAfter  int
}

func (r *Result) String() string {
	return fmt.Sprintf("rounds=%d removed=%d aborted=%d gates %d->%d",
		r.Rounds, r.Removed, r.Aborted, r.GatesBefore, r.GatesAfter)
}

// MarshalJSON serializes the run statistics (the circuit itself is omitted;
// reports carry circuit summaries separately). Field names mirror String().
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Rounds      int `json:"rounds"`
		Removed     int `json:"removed"`
		Aborted     int `json:"aborted"`
		GatesBefore int `json:"gates_before"`
		GatesAfter  int `json:"gates_after"`
	}{r.Rounds, r.Removed, r.Aborted, r.GatesBefore, r.GatesAfter})
}

// Remove returns an irredundant (up to ATPG aborts) equivalent of c.
// The input circuit is not modified.
func Remove(c *circuit.Circuit, opt Options) (*Result, error) {
	if opt.FilterPatterns <= 0 {
		opt.FilterPatterns = 2048
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 20
	}
	sp := opt.Tracer.StartSpan("redundancy.remove")
	defer sp.End()
	poNames := c.PONames()
	work := c.Clone()
	work.Simplify()
	work.Strash()
	work, _ = work.Compact()
	res := &Result{GatesBefore: c.Equiv2Count()}
	for round := 0; round < opt.MaxRounds; round++ {
		rsp := opt.Tracer.StartSpan("redundancy.round")
		rsp.SetInt("round", int64(round))
		res.Rounds++
		mRounds.Inc()
		fl := faults.Collapse(work)
		sim := faultsim.Campaign(work, fl, faultsim.CampaignOptions{
			Patterns: opt.FilterPatterns,
			Seed:     opt.Seed + int64(round),
			Tracer:   opt.Tracer,
		})
		removedThisRound := 0
		res.Aborted = 0
		// Each fault is (re-)proved against the live circuit, so removals
		// within the round stay sound even though they interact. Rewrites
		// only fold lines to constants, which keeps the remaining fault
		// sites structurally valid until the end-of-round simplification.
		asp := opt.Tracer.StartSpan("redundancy.atpg")
		asp.SetInt("hard_faults", int64(len(sim.Remaining)))
		for _, f := range sim.Remaining {
			if !work.Alive(f.Node) || (f.Pin >= 0 && f.Pin >= len(work.Nodes[f.Node].Fanin)) {
				continue
			}
			r := atpg.Generate(work, f, atpg.Options{BacktrackLimit: opt.BacktrackLimit})
			switch r.Status {
			case atpg.Redundant:
				rewrite(work, f)
				removedThisRound++
				res.Removed++
				mRedundant.Inc()
			case atpg.Aborted:
				res.Aborted++
				mAborted.Inc()
			}
		}
		asp.End()
		rsp.SetInt("removed", int64(removedThisRound))
		rsp.SetInt("aborted", int64(res.Aborted))
		if removedThisRound == 0 {
			rsp.End()
			break
		}
		before := work.Clone()
		work.Simplify()
		work.Strash()
		work, _ = work.Compact()
		if opt.Verify && !simulate.EquivalentRandom(before, work, 16, 12, opt.Seed) {
			rsp.End()
			return nil, fmt.Errorf("redundancy: round %d simplification broke equivalence", round)
		}
		rsp.End()
	}
	work.PreservePONames(poNames)
	res.Circuit = work
	res.GatesAfter = work.Equiv2Count()
	return res, nil
}

// rewrite replaces the faulty line by the constant it is stuck at.
func rewrite(c *circuit.Circuit, f faults.Fault) {
	constOf := func(v bool) int {
		if v {
			return c.AddGate(circuit.Const1, "")
		}
		return c.AddGate(circuit.Const0, "")
	}
	if f.Pin < 0 {
		c.SetConstant(f.Node, f.Stuck)
		return
	}
	nd := c.Nodes[f.Node]
	switch nd.Type {
	case circuit.Not, circuit.Buf:
		// Fixed-arity gates: fold directly.
		v := f.Stuck
		if nd.Type == circuit.Not {
			v = !v
		}
		c.SetConstant(f.Node, v)
	default:
		c.SetFanin(f.Node, f.Pin, constOf(f.Stuck))
	}
}

// CheckIrredundant verifies that every collapsed fault of c is testable,
// returning the redundant (or aborted) faults found.
func CheckIrredundant(c *circuit.Circuit, backtrackLimit int) (redundant, aborted []faults.Fault) {
	fl := faults.Collapse(c)
	sim := faultsim.RunRandom(c, fl, 2048, 99)
	for _, f := range sim.Remaining {
		r := atpg.Generate(c, f, atpg.Options{BacktrackLimit: backtrackLimit})
		switch r.Status {
		case atpg.Redundant:
			redundant = append(redundant, f)
		case atpg.Aborted:
			aborted = append(aborted, f)
		}
	}
	return redundant, aborted
}
