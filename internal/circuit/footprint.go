package circuit

// Footprint queries on the frozen CSR view.
//
// The sharded resynthesis sweep speculates replacement decisions against a
// snapshot and validates them later against the edit journal: a speculation
// is stale iff a committed edit touched any node the speculation read. The
// read set of one candidate evaluation is its cut cone — the gates on paths
// between the cut and the candidate output, whose types and fanins the
// truth-table extraction reads — plus the cut nodes themselves (liveness
// checks) plus every consumer of a cone gate (the removability analysis
// reads cone fanout lists). A Footprinter accumulates that set for one gate
// across all of its cuts, deduplicated, as sparse node IDs.
//
// Soundness over precision: nodes the walk cannot resolve (an escaped cut
// whose cone walk runs to the primary inputs, say) are simply included, so a
// footprint is always a superset of what the evaluation reads; an
// over-approximation only costs a spurious conflict, never a wrong result.

// Footprinter computes read footprints of cut cones on one frozen CSR view.
// It carries epoch-stamped scratch so repeated queries allocate nothing
// after warm-up. Not safe for concurrent use; the sharded sweep runs it in
// its serial planning phase.
type Footprinter struct {
	v     *CSR
	seen  []uint32 // footprint membership, epoch-stamped, by dense id
	inCut []uint32 // current AddCone's cut membership, epoch-stamped
	done  []uint32 // current AddCone's expansion marks, epoch-stamped
	epoch uint32   // bumped by Reset (seen) ...
	cutEp uint32   // ... and by AddCone (inCut, done)
	stack []int32
	out   []int32 // accumulated footprint, sparse ids, first-visit order
}

// NewFootprinter returns a walker over the given view. The view must stay
// current for the duration of use; build a new Footprinter (or call Rebind)
// after the underlying circuit changes.
func NewFootprinter(v *CSR) *Footprinter {
	return &Footprinter{v: v}
}

// Rebind points the walker at a fresh view (keeping its scratch) and resets
// the accumulated footprint.
func (fp *Footprinter) Rebind(v *CSR) {
	fp.v = v
	fp.Reset()
}

// Reset starts a new (empty) footprint.
func (fp *Footprinter) Reset() {
	fp.epoch++
	fp.out = fp.out[:0]
}

// add records dense node d in the current footprint once.
func (fp *Footprinter) add(d int32) {
	if fp.seen[d] == fp.epoch {
		return
	}
	fp.seen[d] = fp.epoch
	fp.out = append(fp.out, fp.v.NodeID[d])
}

// AddCone unions one cut cone into the current footprint: every node on a
// path from out down to the cut (the cut nodes included), plus every
// consumer of each cone node. out and cut are sparse node IDs; IDs absent
// from the view (dead or out of range) are skipped.
func (fp *Footprinter) AddCone(out int, cut []int) {
	v := fp.v
	n := v.N()
	if len(fp.seen) < n {
		fp.seen = growSlice(fp.seen, n)
		fp.inCut = growSlice(fp.inCut, n)
		fp.done = growSlice(fp.done, n)
		// Grown scratch holds garbage; fresh epochs make every stamp stale.
		for i := range fp.seen {
			fp.seen[i] = 0
			fp.inCut[i] = 0
			fp.done[i] = 0
		}
		fp.epoch, fp.cutEp = 1, 0
		fp.out = fp.out[:0]
	}
	fp.cutEp++
	for _, id := range cut {
		if id >= 0 && id < len(v.DenseOf) {
			if d := v.DenseOf[id]; d >= 0 {
				fp.inCut[d] = fp.cutEp
				fp.add(d) // liveness of every cut node is read
			}
		}
	}
	if out < 0 || out >= len(v.DenseOf) {
		return
	}
	root := v.DenseOf[out]
	if root < 0 || fp.inCut[root] == fp.cutEp {
		return
	}
	// DFS from the output toward the cut. Cone nodes contribute their
	// consumers (fanout-list reads); the walk stops at cut members and at
	// sources (inputs/constants have no fanins to descend). Expansion marks
	// are per-cone, not per-footprint: two cuts of the same output bound
	// their cones differently, so a node expanded for one cut must be
	// re-expanded for the next or deeper cone nodes would be missed.
	stack := fp.stack[:0]
	stack = append(stack, root)
	for len(stack) > 0 {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fp.done[d] == fp.cutEp {
			continue
		}
		fp.done[d] = fp.cutEp
		fp.add(d)
		for _, cons := range v.FanoutOf(d) {
			fp.add(cons)
		}
		for _, f := range v.FaninOf(d) {
			if fp.inCut[f] != fp.cutEp && fp.done[f] != fp.cutEp {
				stack = append(stack, f)
			}
		}
	}
	fp.stack = stack[:0]
}

// Footprint returns the accumulated sparse node IDs in first-visit order.
// The slice aliases internal storage: valid until the next Reset/Rebind.
func (fp *Footprinter) Footprint() []int32 {
	return fp.out
}
