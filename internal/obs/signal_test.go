package obs_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compsynth/internal/obs"
)

// TestInterruptFlushesArtifacts drives the SIGINT/SIGTERM path in-process:
// an interrupted run must still write the partial run report (carrying the
// interrupt as the run error), flush the -events stream through run_end, and
// report a non-zero exit status. The signal goroutine itself only forwards
// to Run.Interrupt, which is what this test calls.
func TestInterruptFlushesArtifacts(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "ev.ndjson")
	reportPath := filepath.Join(dir, "report.json")
	f := &obs.Flags{Events: eventsPath, MetricsOut: reportPath, Heartbeat: 0}
	run := f.Start("sigtest")

	// A live span and some progress, as if resynthesis were mid-pass.
	sp := run.Tracer.StartSpan("sigtest.pass")
	obs.EmitProgress("sigtest.stage", 1, 4)
	_ = sp // deliberately left open: the interrupt arrives mid-span

	status := run.Interrupt(os.Interrupt)
	if status == 0 {
		t.Fatal("Interrupt returned status 0, want non-zero")
	}

	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("partial report not written: %v", err)
	}
	var rep obs.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("partial report is not JSON: %v", err)
	}
	if !strings.Contains(rep.Error, "interrupt") {
		t.Errorf("report error = %q, want the interrupt recorded", rep.Error)
	}

	// The event stream must be flushed and terminated: a run_end event
	// carrying the interrupt error, after the recorded span/progress tail.
	evRaw, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatalf("event stream not written: %v", err)
	}
	var sawEnd, sawProgress bool
	for i, line := range strings.Split(strings.TrimRight(string(evRaw), "\n"), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("events line %d is not JSON: %v", i+1, err)
		}
		switch ev.Type {
		case "run_end":
			sawEnd = true
			if !strings.Contains(ev.Error, "interrupt") {
				t.Errorf("run_end error = %q, want the interrupt recorded", ev.Error)
			}
		case "progress":
			sawProgress = true
		}
	}
	if !sawEnd {
		t.Error("event stream lost its run_end tail on interrupt")
	}
	if !sawProgress {
		t.Error("event stream lost the progress tail on interrupt")
	}
}

// TestDtraceFlagValidation pins the -dtrace flag contract: a bad mode and a
// mode without -events both fail Start, and a valid mode yields a live
// tracer whose records land on the event stream.
func TestDtraceFlagValidation(t *testing.T) {
	if run := startErr(t, &obs.Flags{Dtrace: "verbose"}); run == "" {
		t.Error("start with -dtrace=verbose succeeded, want mode parse error")
	}
	if run := startErr(t, &obs.Flags{Dtrace: "full"}); !strings.Contains(run, "-events") {
		t.Errorf("start with -dtrace=full and no -events: %q, want an -events requirement error", run)
	}

	dir := t.TempDir()
	f := &obs.Flags{Events: filepath.Join(dir, "ev.ndjson"), Heartbeat: 0, Dtrace: "full"}
	run := f.Start("dtracetest")
	dt := run.Dtrace()
	if dt == nil {
		t.Fatal("Dtrace() is nil with -dtrace=full")
	}
	if err := run.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	// Off is the default and yields the nil (no-op) tracer.
	f2 := &obs.Flags{Events: filepath.Join(dir, "ev2.ndjson"), Heartbeat: 0}
	run2 := f2.Start("dtracetest")
	if run2.Dtrace() != nil {
		t.Error("Dtrace() is non-nil without -dtrace")
	}
	run2.Finish()
}

// startErr runs Flags.Start's fallible half via a subprocess-free probe:
// Start exits the process on error, so this uses the fact that a failing
// facility must be reported before any artifact exists. It returns the error
// text, or "" when the start succeeded (and finishes the run).
func startErr(t *testing.T, f *obs.Flags) string {
	t.Helper()
	run, err := obs.StartForTest(f, "sigtest")
	if err != nil {
		return err.Error()
	}
	run.Finish()
	return ""
}
