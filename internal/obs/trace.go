package obs

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Tracer records a tree of timed spans. A nil *Tracer is a valid disabled
// tracer: StartSpan returns a nil *Span and the whole chain no-ops without
// allocating, so instrumentation can stay in hot paths unconditionally.
//
// Span nesting follows the call structure of a single goroutine (the
// pipeline is single-threaded); methods are nevertheless mutex-guarded so a
// tracer shared across goroutines stays memory-safe.
type Tracer struct {
	mu sync.Mutex

	// TrackAllocs samples runtime.MemStats.TotalAlloc at span start and end
	// and records the delta. ReadMemStats briefly stops the world, so this
	// is only appropriate for coarse (pass-level) spans; it is on by default
	// because that is how the pipeline uses spans.
	TrackAllocs bool

	// MaxSpans bounds the recorded span count (default 16384); spans past
	// the cap are counted in Dropped() but not retained.
	MaxSpans int

	epoch    time.Time
	roots    []*Span
	cur      *Span
	nSpans   int
	dropped  int64
	observer SpanObserver
}

// SpanObserver receives live begin/end notifications for every recorded
// span (the flight recorder streams them as NDJSON events). Callbacks run
// under the tracer's mutex, so they must be fast and must not call back
// into the tracer.
type SpanObserver interface {
	SpanBegin(name string, depth int)
	SpanEnd(name string, depth int, dur time.Duration, allocBytes int64)
}

// SetObserver installs (or, with nil, removes) the live span observer.
func (t *Tracer) SetObserver(o SpanObserver) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.observer = o
	t.mu.Unlock()
}

// NewTracer returns an enabled tracer with allocation tracking on.
func NewTracer() *Tracer {
	return &Tracer{TrackAllocs: true, MaxSpans: 16384, epoch: time.Now()}
}

// Span is one timed region. A nil *Span no-ops on every method.
type Span struct {
	name       string
	tracer     *Tracer
	parent     *Span
	children   []*Span
	depth      int
	start      time.Time
	dur        time.Duration
	allocStart uint64
	allocBytes int64
	ended      bool
	attrs      []attr
}

type attr struct {
	key   string
	str   string
	num   int64
	isNum bool
}

func readAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// StartSpan opens a span as a child of the most recently started open span.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	max := t.MaxSpans
	if max <= 0 {
		max = 16384
	}
	if t.nSpans >= max {
		t.dropped++
		return nil
	}
	if t.epoch.IsZero() {
		t.epoch = time.Now()
	}
	s := &Span{name: name, tracer: t, parent: t.cur, start: time.Now()}
	if t.TrackAllocs {
		s.allocStart = readAlloc()
	}
	if t.cur == nil {
		t.roots = append(t.roots, s)
	} else {
		t.cur.children = append(t.cur.children, s)
		s.depth = t.cur.depth + 1
	}
	t.cur = s
	t.nSpans++
	if t.observer != nil {
		t.observer.SpanBegin(s.name, s.depth)
	}
	return s
}

// End closes the span, recording its duration and (when enabled) allocation
// delta. Ending a span with open children closes the tracer's cursor back to
// this span's parent; double End is harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if t.TrackAllocs {
		if a := readAlloc(); a >= s.allocStart {
			s.allocBytes = int64(a - s.allocStart)
		}
	}
	// Pop the cursor to this span's parent if the cursor is at or below s.
	for c := t.cur; c != nil; c = c.parent {
		if c == s {
			t.cur = s.parent
			break
		}
	}
	if t.observer != nil {
		t.observer.SpanEnd(s.name, s.depth, s.dur, s.allocBytes)
	}
}

// SetInt attaches an integer attribute to the span.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, num: v, isNum: true})
	s.tracer.mu.Unlock()
}

// SetStr attaches a string attribute to the span.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, str: v})
	s.tracer.mu.Unlock()
}

// Dropped returns the number of spans discarded because of MaxSpans.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanJSON is the serialized form of a span subtree. Times are milliseconds;
// StartMS is the offset from the tracer's creation.
type SpanJSON struct {
	Name       string         `json:"name"`
	StartMS    float64        `json:"start_ms"`
	DurMS      float64        `json:"dur_ms"`
	AllocBytes int64          `json:"alloc_bytes,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanJSON     `json:"children,omitempty"`
}

// Export snapshots the recorded span forest. Open spans are exported with
// their duration so far.
func (t *Tracer) Export() []SpanJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanJSON, 0, len(t.roots))
	for _, r := range t.roots {
		out = append(out, t.export(r))
	}
	return out
}

func (t *Tracer) export(s *Span) SpanJSON {
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	j := SpanJSON{
		Name:       s.name,
		StartMS:    float64(s.start.Sub(t.epoch)) / float64(time.Millisecond),
		DurMS:      float64(dur) / float64(time.Millisecond),
		AllocBytes: s.allocBytes,
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			if a.isNum {
				j.Attrs[a.key] = a.num
			} else {
				j.Attrs[a.key] = a.str
			}
		}
	}
	for _, c := range s.children {
		j.Children = append(j.Children, t.export(c))
	}
	return j
}

// Dump writes an indented text rendering of the span forest.
func (t *Tracer) Dump(w io.Writer) {
	for _, s := range t.Export() {
		dumpSpan(w, s, 0)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(w, "(+%d spans dropped past cap)\n", d)
	}
}

func dumpSpan(w io.Writer, s SpanJSON, depth int) {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	line := fmt.Sprintf("%s%-*s %9.2fms", indent, 28-2*depth, s.Name, s.DurMS)
	if s.AllocBytes > 0 {
		line += fmt.Sprintf(" %8.1fKB", float64(s.AllocBytes)/1024)
	}
	for k, v := range s.Attrs {
		line += fmt.Sprintf(" %s=%v", k, v)
	}
	fmt.Fprintln(w, line)
	for _, c := range s.Children {
		dumpSpan(w, c, depth+1)
	}
}
